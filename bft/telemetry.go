package bft

import (
	"fmt"
	"runtime"
	"strconv"
	"time"

	"bftfast/internal/obs"
	"bftfast/internal/obs/telemetry"
	"bftfast/internal/transport"
)

// HostCounters reports the host-side (wall-clock) counters around a
// replica's engine: event-loop drops, UDP receive losses, and the
// verification pipeline's tallies. All fields are atomics underneath and
// safe to read while the replica runs; zero values simply mean the
// corresponding component is not in play (no UDP network, no pipeline).
type HostCounters struct {
	// InboxDrops counts events discarded on a full event-loop inbox;
	// InboxDepth is its current occupancy.
	InboxDrops int64
	InboxDepth int64

	// UDPOversized and UDPBackpressure mirror
	// transport.UDPNetwork.Oversized and Backpressure.
	UDPOversized    int64
	UDPBackpressure int64

	// Pool* mirror the verification pipeline's counters (zero under
	// StartReplica, which has no pipeline).
	PoolVerified    int64
	PoolPassthrough int64
	PoolRejected    int64
	PoolDropped     int64
	PoolQueueDepth  int64
}

// HostStats returns the replica's host-side counters. Unlike Stats it
// needs no trip through the event loop.
func (r *Replica) HostStats() HostCounters {
	hc := HostCounters{
		InboxDrops: r.node.Dropped(),
	}
	if u, ok := r.net.(*transport.UDPNetwork); ok {
		hc.UDPOversized = u.Oversized()
		hc.UDPBackpressure = u.Backpressure()
	}
	if p := r.node.Pool(); p != nil {
		hc.PoolVerified = p.Verified()
		hc.PoolPassthrough = p.Passthrough()
		hc.PoolRejected = p.Rejected()
		hc.PoolDropped = p.Dropped()
		hc.PoolQueueDepth = p.QueueDepth()
	}
	return hc
}

// newReplicaRegistry wires every layer of a starting replica into one
// obs.Registry: engine counters and progress marks ("engine."), phase
// histograms ("phase.", via the PhaseTracker installed in cfg), event-loop
// health ("transport."), UDP receive losses ("udp.") when the network is
// UDP, pipeline tallies ("verify.") when one exists, and process-level
// gauges ("proc."). The registry and most gauges read engine fields, so
// snapshots must run in the node's event context — MetricsSnapshot does.
func (r *Replica) initRegistry(reg *obs.Registry) {
	r.reg = reg
	r.engine.RegisterMetrics(reg, "engine.")
	r.node.RegisterMetrics(reg, "transport.")
	if u, ok := r.net.(*transport.UDPNetwork); ok {
		u.RegisterMetrics(reg, "udp.")
	}
	if p := r.node.Pool(); p != nil {
		p.RegisterMetrics(reg, "verify.")
	}
	reg.GaugeFunc("proc.goroutines", func() int64 { return int64(runtime.NumGoroutine()) })
	reg.GaugeFunc("proc.uptime_seconds", func() int64 { return int64(r.node.Uptime().Seconds()) })
	reg.GaugeFunc("proc.heap_bytes", func() int64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return int64(ms.HeapAlloc)
	})
}

// inLoop runs fn in the replica's event context and waits for it,
// unblocking (with transport.ErrClosed) if the node shuts down with the
// action still queued.
func (r *Replica) inLoop(fn func()) error {
	done := make(chan struct{})
	if err := r.node.Do(func() { fn(); close(done) }); err != nil {
		return err
	}
	select {
	case <-done:
		return nil
	case <-r.node.Done():
		select {
		case <-done:
			return nil
		default:
			return transport.ErrClosed
		}
	}
}

// MetricsSnapshot renders the replica's full metrics registry — engine,
// phase, transport, UDP, pipeline, and process series — in the replica's
// event context. It fails once the replica is closed.
func (r *Replica) MetricsSnapshot() ([]obs.Metric, error) {
	reg := r.reg // always set by StartReplica; local copy for the closure
	var ms []obs.Metric
	if err := r.inLoop(func() { ms = reg.Snapshot() }); err != nil {
		return nil, err
	}
	return ms, nil
}

// statusz assembles the /statusz document in the replica's event context.
func (r *Replica) statusz() (telemetry.Status, error) {
	var st telemetry.Status
	var heard []time.Duration
	err := r.inLoop(func() {
		st.Node = r.cfg.Self
		st.Role = "replica"
		st.View = r.engine.View()
		st.LastExecuted = r.engine.LastExecuted()
		st.LastStable = r.engine.LastStable()
		st.Instances = r.engine.Instances()
		for inst := 0; inst < st.Instances; inst++ {
			if r.engine.LeadsInstance(inst) {
				st.LeaderOf = append(st.LeaderOf, inst)
			}
		}
		heard = r.engine.PeerHeard(nil)
	})
	if err != nil {
		return st, err
	}
	if st.LeaderOf == nil {
		st.LeaderOf = []int{}
	}
	now := r.node.Uptime()
	st.UptimeSeconds = now.Seconds()
	// A peer is live if its last status broadcast is recent; "recent"
	// is three status periods, after which the paper's retransmission
	// machinery would already be compensating.
	thresh := 3 * r.cfg.StatusInterval
	for id, h := range heard {
		if id == r.cfg.Self {
			continue
		}
		p := telemetry.PeerStatus{ID: id, HeardAgoS: -1}
		if h > 0 {
			ago := now - h
			p.HeardAgoS = ago.Seconds()
			p.Live = thresh <= 0 || ago <= thresh
		}
		st.Peers = append(st.Peers, p)
	}
	return st, nil
}

// FlightEvents snapshots the replica's flight-recorder ring (the trace
// recorder passed in Config.Trace) in its event context. It returns an
// error when the recorder is disabled or the replica closed.
func (r *Replica) FlightEvents() ([]obs.Event, error) {
	flight := r.flight
	if flight == nil {
		return nil, fmt.Errorf("bft: flight recorder disabled (set Config.Trace)")
	}
	var evs []obs.Event
	if err := r.inLoop(func() { evs = flight.Events(nil) }); err != nil {
		return nil, err
	}
	return evs, nil
}

// SetFlightDump sets the BFTTRC01 file the flight recorder dumps to and
// arms the crash dump: if the engine panics, the ring is flushed to path
// before the panic resumes. Close also flushes there, so a cleanly stopped
// process leaves its last ring behind for bft-trace. An empty path disarms
// both.
func (r *Replica) SetFlightDump(path string) {
	r.mu.Lock()
	r.flightPath = path
	r.mu.Unlock()
	var crash func()
	if flight := r.flight; path != "" && flight != nil {
		crash = func() {
			// Runs on the panicking loop goroutine — the ring's only
			// writer — so reading it directly is safe.
			_ = telemetry.WriteDump(path, flight.Events(nil))
		}
	}
	r.node.SetCrashDump(crash)
}

// DumpFlight flushes the flight-recorder ring to the path set with
// SetFlightDump, returning the path written. Server binaries call it on
// SIGQUIT.
func (r *Replica) DumpFlight() (string, error) {
	r.mu.Lock()
	path := r.flightPath
	r.mu.Unlock()
	if path == "" {
		return "", fmt.Errorf("bft: no flight dump path set")
	}
	evs, err := r.FlightEvents()
	if err != nil {
		return "", err
	}
	if err := telemetry.WriteDump(path, evs); err != nil {
		return "", err
	}
	return path, nil
}

// ServeTelemetry starts the replica's telemetry endpoint on addr
// (port 0 picks a free port) and returns the bound address. The endpoint
// serves /metrics (Prometheus text), /healthz, /statusz, /debug/pprof/,
// and — when the replica has a flight recorder — /flight. Close stops it
// before the replica's event loop, so a scrape never races shutdown.
func (r *Replica) ServeTelemetry(addr string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.telemetry != nil {
		return "", fmt.Errorf("bft: telemetry already serving on %s", r.telemetry.Addr())
	}
	opts := telemetry.Options{
		Addr: addr,
		Labels: map[string]string{
			"node": strconv.Itoa(r.cfg.Self),
			"role": "replica",
		},
		Snapshot: r.MetricsSnapshot,
		Status:   r.statusz,
	}
	if r.flight != nil {
		opts.FlightEvents = r.FlightEvents
	}
	srv, err := telemetry.Serve(opts)
	if err != nil {
		return "", err
	}
	r.telemetry = srv
	return srv.Addr(), nil
}

// TelemetryAddr returns the bound telemetry address, or "" when
// ServeTelemetry has not run.
func (r *Replica) TelemetryAddr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.telemetry == nil {
		return ""
	}
	return r.telemetry.Addr()
}

// MetricsSnapshot renders the client's metrics registry (client counters,
// event-loop health, process gauges) in the client's event context.
func (c *Client) MetricsSnapshot() ([]obs.Metric, error) {
	reg := c.reg // always set by StartClient; local copy for the closure
	var ms []obs.Metric
	done := make(chan struct{})
	if err := c.node.Do(func() { ms = reg.Snapshot(); close(done) }); err != nil {
		return nil, err
	}
	select {
	case <-done:
		return ms, nil
	case <-c.node.Done():
		select {
		case <-done:
			return ms, nil
		default:
			return nil, transport.ErrClosed
		}
	}
}

// ServeTelemetry starts the client's telemetry endpoint on addr and
// returns the bound address; Close stops it before the client's event
// loop.
func (c *Client) ServeTelemetry(addr string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.telemetry != nil {
		return "", fmt.Errorf("bft: telemetry already serving on %s", c.telemetry.Addr())
	}
	srv, err := telemetry.Serve(telemetry.Options{
		Addr: addr,
		Labels: map[string]string{
			"node": strconv.Itoa(c.self),
			"role": "client",
		},
		Snapshot: c.MetricsSnapshot,
	})
	if err != nil {
		return "", err
	}
	c.telemetry = srv
	return srv.Addr(), nil
}
