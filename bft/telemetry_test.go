package bft_test

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bftfast/bft"
	"bftfast/internal/obs"
	"bftfast/internal/obs/telemetry"
)

func scrape(t *testing.T, addr, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return resp.StatusCode, body
}

// TestReplicaTelemetry runs a group with one replica serving telemetry,
// executes operations, and checks the scrape carries live engine, phase,
// transport, and process series with the right labels.
func TestReplicaTelemetry(t *testing.T) {
	client, replicas, cleanup := startCluster(t, 4, []int{100})
	defer cleanup()

	addr, err := replicas[0].ServeTelemetry("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeTelemetry: %v", err)
	}
	if got := replicas[0].TelemetryAddr(); got != addr {
		t.Errorf("TelemetryAddr = %q, want %q", got, addr)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	const ops = 8
	for i := 0; i < ops; i++ {
		if _, err := client.Invoke(ctx, []byte("inc"), false); err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}

	code, body := scrape(t, addr, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	samples, err := telemetry.ParsePrometheus(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("parsing scrape: %v", err)
	}
	series := map[string]float64{}
	for _, s := range samples {
		if s.Label("quantile") != "" {
			continue
		}
		series[s.Name] = s.Value
		if s.Label("node") != "0" || s.Label("role") != "replica" {
			t.Fatalf("%s: labels %v, want node=0 role=replica", s.Name, s.Labels)
		}
	}
	if len(series) < 20 {
		t.Errorf("scrape has %d series, want >= 20:\n%s", len(series), body)
	}
	if got := series["bft_engine_executed_requests"]; got < ops {
		t.Errorf("executed_requests = %v, want >= %d", got, ops)
	}
	if got := series["bft_phase_execute_ns_count"]; got < 1 {
		t.Errorf("phase.execute_ns count = %v, want >= 1 (phase tracker not wired)", got)
	}
	for _, name := range []string{"bft_transport_inbox_drops", "bft_transport_inbox_depth",
		"bft_proc_goroutines", "bft_proc_heap_bytes", "bft_engine_view"} {
		if _, ok := series[name]; !ok {
			t.Errorf("series %s missing from scrape", name)
		}
	}

	code, body = scrape(t, addr, "/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz status %d: %s", code, body)
	}
	for _, want := range []string{`"role": "replica"`, `"last_executed"`, `"peers"`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/statusz missing %s:\n%s", want, body)
		}
	}
	if code, _ := scrape(t, addr, "/healthz"); code != http.StatusOK {
		t.Errorf("/healthz status %d", code)
	}
	// No flight recorder configured: the endpoint must not exist.
	if code, _ := scrape(t, addr, "/flight"); code != http.StatusNotFound {
		t.Errorf("/flight without recorder: status %d, want 404", code)
	}

	hc := replicas[0].HostStats()
	if hc.InboxDrops != 0 {
		t.Errorf("InboxDrops = %d on an idle channel network", hc.InboxDrops)
	}
}

// TestReplicaFlightDump drives a traced replica, dumps its flight ring,
// and decodes the BFTTRC01 file.
func TestReplicaFlightDump(t *testing.T) {
	net := bft.NewChannelNetwork()
	rings := bft.NewKeyrings([]int{0, 1, 2, 3, 100})
	if err := bft.Provision(rand.New(rand.NewSource(2)), rings); err != nil { //nolint:gosec
		t.Fatal(err)
	}
	var replicas []*bft.Replica
	for i := 0; i < 4; i++ {
		cfg := bft.DefaultConfig(4, i)
		cfg.Trace = bft.NewTraceRecorder(i, 1024)
		r, err := bft.StartReplica(cfg, &counterSM{}, rings[i], net)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		replicas = append(replicas, r)
	}
	client, err := bft.StartClient(bft.NewClientConfig(4, 100), rings[4], net)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 4; i++ {
		if _, err := client.Invoke(ctx, []byte("inc"), false); err != nil {
			t.Fatalf("invoke: %v", err)
		}
	}

	path := filepath.Join(t.TempDir(), "flight.bfttrc")
	replicas[0].SetFlightDump(path)
	got, err := replicas[0].DumpFlight()
	if err != nil {
		t.Fatalf("DumpFlight: %v", err)
	}
	file, err := os.Open(got)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	events, err := obs.ReadTrace(file)
	if err != nil {
		t.Fatalf("decoding flight dump: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("flight dump is empty after committed operations")
	}

	// The /flight endpoint must stream the same ring.
	addr, err := replicas[0].ServeTelemetry("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	code, body := scrape(t, addr, "/flight")
	if code != http.StatusOK {
		t.Fatalf("/flight status %d", code)
	}
	streamed, err := obs.ReadTrace(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("decoding /flight stream: %v", err)
	}
	if len(streamed) < len(events) {
		t.Errorf("/flight returned %d events, dump had %d", len(streamed), len(events))
	}
}

// TestReplicaCloseOrdering is the shutdown-ordering regression test: Close
// must stop the telemetry server and flush the flight recorder before the
// event loop dies, so the endpoint disappears cleanly (no scrape against a
// dead node) and the dump file exists afterwards. A second Close must be
// harmless.
func TestReplicaCloseOrdering(t *testing.T) {
	net := bft.NewChannelNetwork()
	rings := bft.NewKeyrings([]int{0, 1, 2, 3, 100})
	if err := bft.Provision(rand.New(rand.NewSource(3)), rings); err != nil { //nolint:gosec
		t.Fatal(err)
	}
	var replicas []*bft.Replica
	for i := 0; i < 4; i++ {
		cfg := bft.DefaultConfig(4, i)
		cfg.Trace = bft.NewTraceRecorder(i, 256)
		r, err := bft.StartReplica(cfg, &counterSM{}, rings[i], net)
		if err != nil {
			t.Fatal(err)
		}
		replicas = append(replicas, r)
	}
	client, err := bft.StartClient(bft.NewClientConfig(4, 100), rings[4], net)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := client.Invoke(ctx, []byte("inc"), false); err != nil {
		t.Fatalf("invoke: %v", err)
	}

	path := filepath.Join(t.TempDir(), "final.bfttrc")
	replicas[0].SetFlightDump(path)
	addr, err := replicas[0].ServeTelemetry("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	client.Close()
	done := make(chan struct{})
	go func() {
		for _, r := range replicas {
			r.Close()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close deadlocked")
	}

	// The endpoint is gone, not serving errors.
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("telemetry endpoint still reachable after Close")
	}
	// The final flush ran while the loop was alive.
	file, err := os.Open(path)
	if err != nil {
		t.Fatalf("flight ring not flushed on Close: %v", err)
	}
	defer file.Close()
	events, err := obs.ReadTrace(file)
	if err != nil {
		t.Fatalf("decoding close-time dump: %v", err)
	}
	if len(events) == 0 {
		t.Error("close-time dump is empty")
	}

	replicas[0].Close() // idempotent

	// Snapshot calls after Close fail rather than hang.
	if _, err := replicas[0].MetricsSnapshot(); err == nil {
		t.Error("MetricsSnapshot after Close succeeded, want error")
	}
}

// TestClientTelemetry checks the client-side endpoint serves its counters.
func TestClientTelemetry(t *testing.T) {
	client, _, cleanup := startCluster(t, 4, []int{100})
	defer cleanup()

	addr, err := client.ServeTelemetry("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeTelemetry: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		if _, err := client.Invoke(ctx, []byte("inc"), false); err != nil {
			t.Fatalf("invoke: %v", err)
		}
	}
	code, body := scrape(t, addr, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	samples, err := telemetry.ParsePrometheus(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("parsing scrape: %v", err)
	}
	for _, s := range samples {
		if s.Name == "bft_client_completed" {
			if s.Value < 3 || s.Label("role") != "client" || s.Label("node") != "100" {
				t.Errorf("bad client sample %+v", s)
			}
			return
		}
	}
	t.Fatalf("bft_client_completed missing:\n%s", body)
}
