package bft_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"bftfast/bft"
	"bftfast/internal/crypto"
)

// counterSM is a minimal deterministic state machine: "inc" increments,
// "get" reads.
type counterSM struct {
	mu sync.Mutex // the engine is single-threaded, but tests peek
	n  int64
}

func (c *counterSM) Execute(client int32, op []byte, readOnly bool) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if string(op) == "inc" && !readOnly {
		c.n++
	}
	return []byte(fmt.Sprintf("%d", c.n))
}

func (c *counterSM) StateDigest() crypto.Digest {
	c.mu.Lock()
	defer c.mu.Unlock()
	return crypto.Hash([]byte(fmt.Sprintf("%d", c.n)))
}

func (c *counterSM) Snapshot() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return []byte(fmt.Sprintf("%d", c.n))
}

func (c *counterSM) Restore(snap []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err := fmt.Sscanf(string(snap), "%d", &c.n)
	return err
}

func startCluster(t *testing.T, n int, clientIDs []int) (*bft.Client, []*bft.Replica, func()) {
	t.Helper()
	net := bft.NewChannelNetwork()
	ids := make([]int, 0, n+len(clientIDs))
	for i := 0; i < n; i++ {
		ids = append(ids, i)
	}
	ids = append(ids, clientIDs...)
	rings := bft.NewKeyrings(ids)
	if err := bft.Provision(rand.New(rand.NewSource(1)), rings); err != nil { //nolint:gosec
		t.Fatal(err)
	}
	var replicas []*bft.Replica
	for i := 0; i < n; i++ {
		r, err := bft.StartReplica(bft.DefaultConfig(n, i), &counterSM{}, rings[i], net)
		if err != nil {
			t.Fatal(err)
		}
		replicas = append(replicas, r)
	}
	client, err := bft.StartClient(bft.NewClientConfig(n, clientIDs[0]), rings[n], net)
	if err != nil {
		t.Fatal(err)
	}
	cleanup := func() {
		client.Close()
		for _, r := range replicas {
			r.Close()
		}
	}
	return client, replicas, cleanup
}

func TestPublicAPIRoundTrip(t *testing.T) {
	client, _, cleanup := startCluster(t, 4, []int{100})
	defer cleanup()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 1; i <= 5; i++ {
		res, err := client.Invoke(ctx, []byte("inc"), false)
		if err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
		if string(res) != fmt.Sprintf("%d", i) {
			t.Fatalf("counter = %s after %d incs", res, i)
		}
	}
	res, err := client.Invoke(ctx, []byte("get"), true)
	if err != nil {
		t.Fatalf("read-only invoke: %v", err)
	}
	if string(res) != "5" {
		t.Fatalf("read-only get = %s, want 5", res)
	}
	if st := client.Stats(); st.Completed != 6 {
		t.Fatalf("client completed %d ops, want 6", st.Completed)
	}
}

func TestPublicAPIConcurrentInvokes(t *testing.T) {
	client, replicas, cleanup := startCluster(t, 4, []int{100})
	defer cleanup()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.Invoke(ctx, []byte("inc"), false); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res, err := client.Invoke(ctx, []byte("get"), true)
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "20" {
		t.Fatalf("counter = %s, want 20", res)
	}
	if v := replicas[0].View(); v != 0 {
		t.Fatalf("view = %d, want 0 (healthy run)", v)
	}
}

func TestPublicAPISurvivesPrimaryCrash(t *testing.T) {
	client, replicas, cleanup := startCluster(t, 4, []int{100})
	defer cleanup()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := client.Invoke(ctx, []byte("inc"), false); err != nil {
		t.Fatal(err)
	}
	replicas[0].Close() // kill the view-0 primary
	res, err := client.Invoke(ctx, []byte("inc"), false)
	if err != nil {
		t.Fatalf("invoke after primary crash: %v", err)
	}
	if string(res) != "2" {
		t.Fatalf("counter = %s after crash, want 2", res)
	}
	if v := replicas[1].View(); v < 1 {
		t.Fatalf("replica 1 still in view %d after primary crash", v)
	}
}

func TestPublicAPIInvokeContextCancel(t *testing.T) {
	net := bft.NewChannelNetwork()
	rings := bft.NewKeyrings([]int{0, 1, 2, 3, 100})
	if err := bft.Provision(rand.New(rand.NewSource(1)), rings); err != nil { //nolint:gosec
		t.Fatal(err)
	}
	// No replicas started: the invoke can never complete.
	client, err := bft.StartClient(bft.NewClientConfig(4, 100), rings[4], net)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := client.Invoke(ctx, []byte("inc"), false); err == nil {
		t.Fatal("invoke succeeded with no replicas")
	}
}

func TestPublicAPIValidation(t *testing.T) {
	net := bft.NewChannelNetwork()
	rings := bft.NewKeyrings([]int{0, 2})
	if _, err := bft.StartReplica(bft.DefaultConfig(3, 0), &counterSM{}, rings[0], net); err == nil {
		t.Fatal("3-replica group accepted (cannot tolerate any fault)")
	}
	if _, err := bft.StartClient(bft.NewClientConfig(4, 2), rings[1], net); err == nil {
		t.Fatal("client id colliding with replica ids accepted")
	}
}

func TestPublicAPIScheduleRecovery(t *testing.T) {
	client, replicas, cleanup := startCluster(t, 4, []int{100})
	defer cleanup()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := client.Invoke(ctx, []byte("inc"), false); err != nil {
		t.Fatal(err)
	}
	replicas[2].ScheduleRecovery(20 * time.Millisecond)
	time.Sleep(100 * time.Millisecond)
	for i := 0; i < 5; i++ {
		if _, err := client.Invoke(ctx, []byte("inc"), false); err != nil {
			t.Fatalf("invoke %d after recovery: %v", i, err)
		}
	}
	res, err := client.Invoke(ctx, []byte("get"), true)
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "6" {
		t.Fatalf("counter = %s, want 6", res)
	}
}

// startPipelinedCluster is startCluster through StartReplicaPipelined: the
// verification pool fronts every replica, with the given worker count.
func startPipelinedCluster(t *testing.T, net bft.Network, n, workers int, clientID int) (*bft.Client, []*bft.Replica, func()) {
	t.Helper()
	ids := make([]int, 0, n+1)
	for i := 0; i < n; i++ {
		ids = append(ids, i)
	}
	ids = append(ids, clientID)
	rings := bft.NewKeyrings(ids)
	if err := bft.Provision(rand.New(rand.NewSource(1)), rings); err != nil { //nolint:gosec
		t.Fatal(err)
	}
	var replicas []*bft.Replica
	for i := 0; i < n; i++ {
		r, err := bft.StartReplicaPipelined(bft.DefaultConfig(n, i), &counterSM{}, rings[i], net, workers)
		if err != nil {
			t.Fatal(err)
		}
		replicas = append(replicas, r)
	}
	client, err := bft.StartClient(bft.NewClientConfig(n, clientID), rings[n], net)
	if err != nil {
		t.Fatal(err)
	}
	cleanup := func() {
		client.Close()
		for _, r := range replicas {
			r.Close()
		}
	}
	return client, replicas, cleanup
}

// TestPublicAPIPipelinedRoundTrip runs the counter service behind the
// multicore verification pipeline in both regimes — the workers=1 bypass
// and a real worker fan-out — and expects results identical to the plain
// path: same counter values, no view change, no dropped messages beyond
// what a healthy run produces.
func TestPublicAPIPipelinedRoundTrip(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			client, replicas, cleanup := startPipelinedCluster(t, bft.NewChannelNetwork(), 4, workers, 100)
			defer cleanup()

			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			for i := 1; i <= 5; i++ {
				res, err := client.Invoke(ctx, []byte("inc"), false)
				if err != nil {
					t.Fatalf("invoke %d: %v", i, err)
				}
				if string(res) != fmt.Sprintf("%d", i) {
					t.Fatalf("counter = %s after %d incs", res, i)
				}
			}
			res, err := client.Invoke(ctx, []byte("get"), true)
			if err != nil {
				t.Fatalf("read-only invoke: %v", err)
			}
			if string(res) != "5" {
				t.Fatalf("read-only get = %s, want 5", res)
			}
			if v := replicas[0].View(); v != 0 {
				t.Fatalf("view = %d, want 0 (healthy run)", v)
			}
		})
	}
}

// TestPublicAPIPipelinedOverUDP is the same service on real UDP sockets:
// the replicas' readers feed the pool through the zero-copy owned-buffer
// path, the client stays on the plain path.
func TestPublicAPIPipelinedOverUDP(t *testing.T) {
	addrs := map[int]string{
		0:   "127.0.0.1:48341",
		1:   "127.0.0.1:48342",
		2:   "127.0.0.1:48343",
		3:   "127.0.0.1:48344",
		100: "127.0.0.1:48345",
	}
	net, err := bft.NewUDPNetwork(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	client, _, cleanup := startPipelinedCluster(t, net, 4, 2, 100)
	defer cleanup()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 1; i <= 3; i++ {
		res, err := client.Invoke(ctx, []byte("inc"), false)
		if err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
		if string(res) != fmt.Sprintf("%d", i) {
			t.Fatalf("counter = %s after %d incs", res, i)
		}
	}
}
