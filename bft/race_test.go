package bft_test

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestStatsConcurrentWithTraffic hammers the wall-time stats accessors
// from many goroutines while the cluster serves operations. The engine's
// Counters are plain fields mutated on the event loop — the determinism
// contract forbids locking inside engines — so the only safe read path is
// the one Replica.Stats/View/ClientStats take: an injected action on the
// node's own event loop. Under -race (make test-race covers the whole
// module) this test fails if anyone reintroduces a direct off-loop read.
func TestStatsConcurrentWithTraffic(t *testing.T) {
	client, replicas, cleanup := startCluster(t, 4, []int{100})
	defer cleanup()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, r := range replicas {
					_ = r.Stats()
					_ = r.View()
				}
				_ = client.Stats()
			}
		}()
	}

	for i := 0; i < 25; i++ {
		if _, err := client.Invoke(ctx, []byte("inc"), false); err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}
	close(stop)
	readers.Wait()

	st := replicas[1].Stats()
	if st.ExecutedRequests < 25 {
		t.Fatalf("replica 1 executed %d requests, want >= 25", st.ExecutedRequests)
	}
}
