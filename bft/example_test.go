package bft_test

import (
	"context"
	"crypto/rand"
	"fmt"
	"log"
	"strconv"
	"sync"
	"time"

	"bftfast/bft"
	"bftfast/internal/crypto"
)

// exampleSM is a replicated counter (the canonical minimal StateMachine).
type exampleSM struct {
	mu sync.Mutex
	n  int64
}

func (c *exampleSM) Execute(client int32, op []byte, readOnly bool) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if string(op) == "inc" && !readOnly {
		c.n++
	}
	return []byte(strconv.FormatInt(c.n, 10))
}

func (c *exampleSM) StateDigest() crypto.Digest { return crypto.Hash(c.Snapshot()) }

func (c *exampleSM) Snapshot() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return []byte(strconv.FormatInt(c.n, 10))
}

func (c *exampleSM) Restore(snap []byte) error {
	n, err := strconv.ParseInt(string(snap), 10, 64)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = n
	return nil
}

// Example replicates a counter across four replicas — tolerating one
// arbitrary fault — and invokes it through the client API.
func Example() {
	network := bft.NewChannelNetwork()
	const clientID = 100
	rings := bft.NewKeyrings([]int{0, 1, 2, 3, clientID})
	if err := bft.Provision(rand.Reader, rings); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		replica, err := bft.StartReplica(bft.DefaultConfig(4, i), &exampleSM{}, rings[i], network)
		if err != nil {
			log.Fatal(err)
		}
		defer replica.Close()
	}
	client, err := bft.StartClient(bft.NewClientConfig(4, clientID), rings[4], network)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		if _, err := client.Invoke(ctx, []byte("inc"), false); err != nil {
			log.Fatal(err)
		}
	}
	result, err := client.Invoke(ctx, []byte("get"), true) // read-only fast path
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(result))
	// Output: 3
}
