// Command goldentrace regenerates the golden single-leader traces under
// internal/bench/testdata. The goldens anchor the parallel-leader ordering
// extension's backward-compatibility contract (see
// internal/bench/parallel_test.go): runs with Instances in {0, 1} must
// reproduce them byte for byte.
//
// Regenerate ONLY when an intentional engine change moves the baseline —
// from a commit where the single-leader behavior is known-good:
//
//	go run ./tools/goldentrace
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"bftfast/internal/bench"
	"bftfast/internal/obs"
)

func main() {
	out := flag.String("out", "internal/bench/testdata", "output directory")
	flag.Parse()

	for _, tc := range []struct {
		name    string
		clients int
		ro      bool
	}{
		// Parameters are mirrored by goldenParams in parallel_test.go; keep
		// the two in lockstep.
		{"golden_g1_rw", 6, false},
		{"golden_g1_ro", 4, true},
	} {
		p := bench.DefaultMicroParams()
		p.Clients = tc.clients
		p.ReadOnly = tc.ro
		p.Warmup = 40 * time.Millisecond
		p.Measure = 80 * time.Millisecond
		p.Trace = true
		res := bench.RunMicro(p)

		f, err := os.Create(filepath.Join(*out, tc.name+".trc"))
		if err != nil {
			fatal(err)
		}
		if err := obs.WriteTrace(f, res.Events); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		// Headline metrics alongside, as a human-readable second gate.
		headline := fmt.Sprintf("completed=%d lost=%d throughput=%.6f latency=%d p50=%d p99=%d\n",
			res.Completed, res.Lost, res.Throughput, int64(res.Latency), int64(res.P50), int64(res.P99))
		if err := os.WriteFile(filepath.Join(*out, tc.name+".headline"), []byte(headline), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d events, %s", tc.name, len(res.Events), headline)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "goldentrace:", err)
	os.Exit(1)
}
