#!/bin/sh
# telemetry-smoke.sh: end-to-end exercise of the host telemetry plane.
#
# Boots a real 4-replica UDP group with -telemetry and -flight, drives
# operations through bft-kv, and asserts:
#   - /metrics returns valid Prometheus text with >= 20 bft_ series,
#     including committed-operation counters matching the ops sent and
#     zero transport drops on loopback;
#   - /healthz and /statusz answer;
#   - bft-top renders one aggregate frame over the fleet;
#   - SIGQUIT produces a BFTTRC01 flight dump that bft-trace -decode reads;
#   - SIGTERM shuts every replica down cleanly (exit status 0).
#
# Artifacts (scrapes, statusz, bft-top frame, flight dump, logs) are left
# in the directory named by $1 (default: a fresh temp dir), so CI can
# upload them. Requires only the go toolchain and loopback UDP.
set -eu

OUT=${1:-$(mktemp -d)}
mkdir -p "$OUT"
BIN="$OUT/bin"
KEYS="$OUT/keys"
mkdir -p "$BIN" "$KEYS"

echo "telemetry-smoke: artifacts in $OUT"

go build -o "$BIN" ./cmd/bft-keygen ./cmd/bft-replica ./cmd/bft-kv ./cmd/bft-top ./cmd/bft-trace

"$BIN/bft-keygen" -replicas 4 -clients 100 -out "$KEYS"

PEERS="0=127.0.0.1:5300,1=127.0.0.1:5301,2=127.0.0.1:5302,3=127.0.0.1:5303,100=127.0.0.1:5400"
TPORTS="7300 7301 7302 7303"

PIDS=""
for id in 0 1 2 3; do
    tport=$((7300 + id))
    "$BIN/bft-replica" -id "$id" -replicas 4 \
        -keys "$KEYS/node-$id.keys" -peers "$PEERS" \
        -telemetry "127.0.0.1:$tport" \
        -flight 4096 -flight-dump "$OUT/flight-$id.bfttrc" \
        >"$OUT/replica-$id.log" 2>&1 &
    PIDS="$PIDS $!"
done

cleanup() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
}
trap cleanup EXIT INT TERM

# Wait for every telemetry endpoint to come up.
for port in $TPORTS; do
    ok=0
    for _ in $(seq 1 50); do
        if curl -sf "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then
            ok=1
            break
        fi
        sleep 0.2
    done
    if [ "$ok" != 1 ]; then
        echo "telemetry-smoke: FAIL: endpoint :$port never became healthy" >&2
        cat "$OUT"/replica-*.log >&2 || true
        exit 1
    fi
done
echo "telemetry-smoke: all 4 telemetry endpoints healthy"

# Drive operations through the real client path.
OPS=6
i=0
while [ "$i" -lt "$OPS" ]; do
    "$BIN/bft-kv" -id 100 -replicas 4 -keys "$KEYS/node-100.keys" -peers "$PEERS" \
        set "key$i" "value$i" >>"$OUT/client.log" 2>&1
    i=$((i + 1))
done
"$BIN/bft-kv" -id 100 -replicas 4 -keys "$KEYS/node-100.keys" -peers "$PEERS" \
    get key0 >>"$OUT/client.log" 2>&1
echo "telemetry-smoke: $OPS writes + 1 read committed"

# Scrape every endpoint and assert on replica 0's exposition.
for id in 0 1 2 3; do
    curl -sf "http://127.0.0.1:$((7300 + id))/metrics" >"$OUT/metrics-$id.txt"
done
curl -sf "http://127.0.0.1:7300/statusz" >"$OUT/statusz-0.json"

SCRAPE="$OUT/metrics-0.txt"
series=$(grep -c '^bft_' "$SCRAPE")
if [ "$series" -lt 20 ]; then
    echo "telemetry-smoke: FAIL: only $series bft_ series in scrape, want >= 20" >&2
    cat "$SCRAPE" >&2
    exit 1
fi
executed=$(awk '/^bft_engine_executed_requests\{/ {print int($2)}' "$SCRAPE")
if [ -z "$executed" ] || [ "$executed" -lt "$OPS" ]; then
    echo "telemetry-smoke: FAIL: executed_requests=$executed, want >= $OPS" >&2
    exit 1
fi
phase_count=$(awk '/^bft_phase_execute_ns_count\{/ {print int($2)}' "$SCRAPE")
if [ -z "$phase_count" ] || [ "$phase_count" -lt 1 ]; then
    echo "telemetry-smoke: FAIL: no phase histogram samples in scrape" >&2
    exit 1
fi
for zero in bft_transport_inbox_drops bft_udp_oversized bft_verify_rejected; do
    v=$(awk -v m="^$zero{" 'index($0, substr(m,2)) == 1 {print int($2)}' "$SCRAPE")
    if [ -n "$v" ] && [ "$v" -ne 0 ]; then
        echo "telemetry-smoke: FAIL: $zero=$v on loopback, want 0" >&2
        exit 1
    fi
done
grep -q '"role": "replica"' "$OUT/statusz-0.json"
echo "telemetry-smoke: scrape OK ($series series, executed=$executed, phase samples=$phase_count, zero drops)"

# One aggregate bft-top frame over the fleet.
"$BIN/bft-top" -endpoints 127.0.0.1:7300,127.0.0.1:7301,127.0.0.1:7302,127.0.0.1:7303 \
    -interval 300ms -count 2 >"$OUT/bft-top.txt"
grep -q '^TOTAL' "$OUT/bft-top.txt"
grep -q 'replica' "$OUT/bft-top.txt"
echo "telemetry-smoke: bft-top frame OK"
sed -n '$p' "$OUT/bft-top.txt"

# SIGQUIT dumps the flight ring; bft-trace must decode it.
rpid0=$(echo "$PIDS" | awk '{print $1}')
kill -QUIT "$rpid0"
ok=0
for _ in $(seq 1 50); do
    if [ -s "$OUT/flight-0.bfttrc" ]; then
        ok=1
        break
    fi
    sleep 0.2
done
if [ "$ok" != 1 ]; then
    echo "telemetry-smoke: FAIL: SIGQUIT produced no flight dump" >&2
    cat "$OUT/replica-0.log" >&2
    exit 1
fi
"$BIN/bft-trace" -decode "$OUT/flight-0.bfttrc" >"$OUT/flight-0.txt"
if ! [ -s "$OUT/flight-0.txt" ]; then
    echo "telemetry-smoke: FAIL: decoded flight dump is empty" >&2
    exit 1
fi
echo "telemetry-smoke: flight dump decoded ($(wc -l <"$OUT/flight-0.txt") events)"

# Clean SIGTERM shutdown: every replica must exit with status 0.
for pid in $PIDS; do
    kill -TERM "$pid"
done
status=0
for pid in $PIDS; do
    if ! wait "$pid"; then
        status=1
    fi
done
trap - EXIT INT TERM
if [ "$status" != 0 ]; then
    echo "telemetry-smoke: FAIL: a replica exited non-zero on SIGTERM" >&2
    cat "$OUT"/replica-*.log >&2
    exit 1
fi
echo "telemetry-smoke: clean SIGTERM shutdown"
echo "telemetry-smoke: PASS"
