# Convenience targets for the bftfast reproduction.

GO ?= go

.PHONY: all build lint docs-check test test-race test-adversary fuzz-smoke telemetry-smoke bench bench-host breakdown figures fs-figures examples clean

all: build lint docs-check test

build:
	$(GO) build ./...

# Lint gate: go vet, the repository's own determinism- and protocol-contract
# analyzers (cmd/bft-vet, see internal/analysis and DESIGN.md), and
# staticcheck when installed. Runs clean over the whole module; violations
# are either fixed or annotated //bftvet:allow <reason> (optionally scoped:
# //bftvet:allow:name) at the offending line. The -selftest run first proves
# every analyzer still fires on its seeded-violation corpus, so a pass
# cannot silently go blind.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/bft-vet -selftest
	$(GO) run ./cmd/bft-vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# Docs anchor lint: every PROTOCOL.md#... or DESIGN.md#... link in the
# tracked docs must resolve to a real heading in the target file. Slugs are
# GitHub-style: lowercase, punctuation stripped, spaces become hyphens.
docs-check:
	@status=0; \
	for src in README.md PROTOCOL.md DESIGN.md EXPERIMENTS.md ROADMAP.md; do \
		[ -f $$src ] || continue; \
		for link in $$(grep -oE '\((PROTOCOL|DESIGN|README|EXPERIMENTS)\.md#[a-z0-9-]+\)' $$src | tr -d '()' | sort -u); do \
			doc=$${link%%#*}; anchor=$${link#*#}; \
			if ! sed -n 's/^#\{1,6\} //p' $$doc \
				| tr '[:upper:]' '[:lower:]' \
				| sed 's/[^a-z0-9 -]//g; s/ /-/g' \
				| grep -qx "$$anchor"; then \
				echo "docs-check: $$src links $$doc#$$anchor but $$doc has no such heading"; \
				status=1; \
			fi; \
		done; \
	done; \
	if [ $$status -eq 0 ]; then echo "docs-check: all doc anchors resolve"; fi; \
	exit $$status

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Byzantine adversary campaign under the race detector: per-behavior safety
# runs plus the full liveness sweep. BFT_CAMPAIGN_OUT makes the sweep write
# campaign_summary.txt and campaign.json (per-phase breakdowns) for CI
# artifact upload; BFT_CHAOS_SEED replays a reported failure seed.
test-adversary:
	BFT_CAMPAIGN_OUT=$(CURDIR) $(GO) test -race -count=1 -v -run 'TestSafetyRunPerBehavior|TestCampaign' ./internal/adversary/...
	$(GO) test -race -count=1 -run 'Equivocating|CorruptTransfer|WrapReplica' ./internal/core ./internal/bench

# Short deterministic fuzz pass over every message-decode fuzz target,
# seeded from the adversary garbage corpus (internal/adversary). CI runs
# this as a smoke; raise FUZZTIME locally for a real session.
FUZZTIME ?= 10s
fuzz-smoke:
	@set -e; for f in FuzzUnmarshal FuzzDecoderPrimitives FuzzUnmarshalPrepareInto FuzzUnmarshalCommitInto FuzzUnmarshalReplyInto; do \
		echo "--- fuzz $$f ($(FUZZTIME))"; \
		$(GO) test -run '^$$' -fuzz "^$$f$$" -fuzztime $(FUZZTIME) ./internal/message; \
	done

# End-to-end smoke of the host telemetry plane (DESIGN.md §11): boots a
# real 4-replica UDP group with -telemetry and -flight, drives operations
# through bft-kv, asserts on the /metrics scrape (series count, committed
# ops, zero drops), renders a bft-top frame, dumps the flight ring via
# SIGQUIT and decodes it with bft-trace, then checks clean SIGTERM
# shutdown. Artifacts land in TELEMETRY_OUT for CI upload.
TELEMETRY_OUT ?= $(CURDIR)/telemetry-artifacts
telemetry-smoke:
	sh tools/telemetry-smoke.sh $(TELEMETRY_OUT)

# Every paper figure at reduced resolution (a few minutes).
bench:
	$(GO) test -bench=. -benchmem -run nope .

# Host-performance microbenchmarks (internal/hostbench): wall-clock cost of
# the codec, MAC, and event-kernel hot paths, written to BENCH_host.json.
# Compare two reports with: go run ./cmd/bench-host -compare OLD NEW
bench-host:
	$(GO) run ./cmd/bench-host -out BENCH_host.json

# Traced per-phase latency breakdown of the 0/0 benchmark, BFT vs
# tentative-execution-off, written to breakdown.json (reduced windows).
breakdown:
	$(GO) run ./cmd/bft-trace -compare -scale 0.1 -json -out breakdown.json
	$(GO) run ./cmd/bft-trace -compare -scale 0.1

# Full-resolution micro-benchmark figures (Figures 2-7 + §4.4; ~6 min).
figures:
	$(GO) run ./cmd/bft-bench -figure all

# Full-resolution file-system figures (Figures 8-9; ~25 min).
fs-figures:
	$(GO) run ./cmd/bfs-bench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/kvstore
	$(GO) run ./examples/filesystem
	$(GO) run ./examples/viewchange

clean:
	$(GO) clean -testcache
