# Convenience targets for the bftfast reproduction.

GO ?= go

.PHONY: all build test test-race bench figures fs-figures examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./bft/ ./internal/transport/

# Every paper figure at reduced resolution (a few minutes).
bench:
	$(GO) test -bench=. -benchmem -run nope .

# Full-resolution micro-benchmark figures (Figures 2-7 + §4.4; ~6 min).
figures:
	$(GO) run ./cmd/bft-bench -figure all

# Full-resolution file-system figures (Figures 8-9; ~25 min).
fs-figures:
	$(GO) run ./cmd/bfs-bench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/kvstore
	$(GO) run ./examples/filesystem
	$(GO) run ./examples/viewchange

clean:
	$(GO) clean -testcache
