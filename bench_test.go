// Package bftfast's root benchmarks regenerate every table and figure of
// the paper's evaluation (one testing.B benchmark per figure; see
// EXPERIMENTS.md for the paper-vs-measured record):
//
//	go test -bench=. -benchmem
//
// Each benchmark runs the corresponding experiment on the simulated
// testbed and prints the resulting table; the custom metrics attached via
// b.ReportMetric carry the figure's headline numbers. One iteration of a
// benchmark is one full experiment, so Go's benchmark harness keeps N
// small. The cmd/bft-bench and cmd/bfs-bench tools produce the same tables
// with full-resolution sweeps.
package bftfast

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"bftfast/internal/bench"
	"bftfast/internal/workload"
)

// benchScale shrinks simulation measurement windows for the sweeps; the
// standalone tools run at scale 1.
const benchScale = 0.25

// benchClients is the client grid used by throughput sweeps here.
var benchClients = []int{1, 5, 10, 20, 50, 100, 200}

// cell parses one table cell as a number, failing the benchmark loudly on
// malformed output — a silent 0 would report a figure metric that looks
// plausible instead of flagging the broken table.
func cell(b *testing.B, t *bench.Table, row, col int) float64 {
	b.Helper()
	if row < 0 || row >= len(t.Rows) || col < 0 || col >= len(t.Rows[row]) {
		b.Fatalf("table %q has no cell (%d,%d)", t.Title, row, col)
	}
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("table %q cell (%d,%d) = %q is not numeric: %v", t.Title, row, col, t.Rows[row][col], err)
	}
	return v
}

// BenchmarkFigure2 reproduces Figure 2: latency and slowdown vs result
// size for the simple service (metrics: slowdown at 0 B and at 8 KB).
func BenchmarkFigure2(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.Figure2(benchScale)
	}
	t.Print(os.Stdout)
	b.ReportMetric(cell(b, t, 0, 4), "slowdown@0B")
	b.ReportMetric(cell(b, t, len(t.Rows)-1, 4), "slowdown@8KB")
}

// BenchmarkFigure3 reproduces Figure 3: the cost of tolerating two faults
// (7 replicas) instead of one (metrics: f=2/f=1 latency ratio at the
// smallest and largest argument).
func BenchmarkFigure3(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.Figure3(benchScale)
	}
	t.Print(os.Stdout)
	b.ReportMetric(cell(b, t, 0, 5), "f2-slowdown@8B")
	b.ReportMetric(cell(b, t, len(t.Rows)-1, 5), "f2-slowdown@8KB")
}

// benchFigure4 runs one of Figure 4's three operations.
func benchFigure4(b *testing.B, op string, metric string) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.Figure4(op, benchClients, benchScale)
	}
	t.Print(os.Stdout)
	last := len(t.Rows) - 1
	b.ReportMetric(cell(b, t, last, 1), metric+"-rw-ops/s")
	b.ReportMetric(cell(b, t, last, 2), metric+"-ro-ops/s")
	b.ReportMetric(cell(b, t, last, 3), metric+"-norep-ops/s")
}

// BenchmarkFigure4_00 reproduces Figure 4's 0/0 panel (CPU-bound ops).
func BenchmarkFigure4_00(b *testing.B) { benchFigure4(b, "0/0", "00") }

// BenchmarkFigure4_04 reproduces Figure 4's 0/4 panel (4 KB results; BFT
// beats NO-REP through digest replies).
func BenchmarkFigure4_04(b *testing.B) { benchFigure4(b, "0/4", "04") }

// BenchmarkFigure4_40 reproduces Figure 4's 4/0 panel (4 KB arguments;
// request transmission bounds everyone near 3000 ops/s).
func BenchmarkFigure4_40(b *testing.B) { benchFigure4(b, "4/0", "40") }

// BenchmarkFigure5 reproduces Figure 5: the digest-replies ablation
// (metric: BFT/BFT-NDR throughput ratio at the largest client count).
func BenchmarkFigure5(b *testing.B) {
	var lat, thr *bench.Table
	for i := 0; i < b.N; i++ {
		lat, thr = bench.Figure5(benchClients, benchScale)
	}
	lat.Print(os.Stdout)
	thr.Print(os.Stdout)
	last := len(thr.Rows) - 1
	withT, withoutT := cell(b, thr, last, 1), cell(b, thr, last, 2)
	if withoutT > 0 {
		b.ReportMetric(withT/withoutT, "digest-replies-gain")
	}
}

// BenchmarkFigure6 reproduces Figure 6: the batching ablation (metric:
// batched/unbatched throughput ratio at the largest client count).
func BenchmarkFigure6(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.Figure6(benchClients, benchScale)
	}
	t.Print(os.Stdout)
	last := len(t.Rows) - 1
	with, without := cell(b, t, last, 1), cell(b, t, last, 2)
	if without > 0 {
		b.ReportMetric(with/without, "batching-gain")
	}
}

// BenchmarkFigure7 reproduces Figure 7: the separate-request-transmission
// ablation (metrics: latency saving at 8 KB arguments, throughput gain for
// 4/0).
func BenchmarkFigure7(b *testing.B) {
	var lat, thr *bench.Table
	for i := 0; i < b.N; i++ {
		lat, thr = bench.Figure7(benchClients, benchScale)
	}
	lat.Print(os.Stdout)
	thr.Print(os.Stdout)
	lastL := len(lat.Rows) - 1
	with, without := cell(b, lat, lastL, 1), cell(b, lat, lastL, 2)
	if without > 0 {
		b.ReportMetric(100*(1-with/without), "srt-latency-saving-%")
	}
}

// BenchmarkTentativeExecution reproduces the §4.4 tentative-execution
// text results (metric: latency saving at 0 B results).
func BenchmarkTentativeExecution(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.TentativeExecution(benchScale)
	}
	t.Print(os.Stdout)
	with, without := cell(b, t, 0, 1), cell(b, t, 0, 2)
	if without > 0 {
		b.ReportMetric(100*(1-with/without), "tentative-saving-%")
	}
}

// BenchmarkPiggybackCommit reproduces the §4.4 piggybacked-commit text
// results (metrics: gain at 5 clients and at 200).
func BenchmarkPiggybackCommit(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.PiggybackCommit(benchScale)
	}
	t.Print(os.Stdout)
	first, last := 0, len(t.Rows)-1
	w0, s0 := cell(b, t, first, 1), cell(b, t, first, 2)
	wN, sN := cell(b, t, last, 1), cell(b, t, last, 2)
	if s0 > 0 {
		b.ReportMetric(100*(w0/s0-1), "piggyback-gain@5-%")
	}
	if sN > 0 {
		b.ReportMetric(100*(wN/sN-1), "piggyback-gain@200-%")
	}
}

// figure8Copies picks the Andrew size: the paper's Andrew100 normally, a
// small tree under -short. Andrew500 takes ~25 minutes of host time; run
// it with `go run ./cmd/bfs-bench -copies 500` (EXPERIMENTS.md records its
// results: BFS/NO-REP = 1.22, matching the paper).
func figure8Copies(short bool) []int {
	if short {
		return []int{20}
	}
	return []int{100}
}

// BenchmarkFigure8 reproduces Figure 8: the scaled modified Andrew
// benchmark on BFS, NO-REP and NFS-STD (metrics: BFS/NO-REP and
// BFS/NFS-STD elapsed-time ratios for each size).
func BenchmarkFigure8(b *testing.B) {
	copies := figure8Copies(testing.Short())
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.Figure8(copies)
	}
	t.Print(os.Stdout)
	for r := range t.Rows {
		b.ReportMetric(cell(b, t, r, 4), fmt.Sprintf("bfs/norep@%s", t.Rows[r][0]))
		b.ReportMetric(cell(b, t, r, 5), fmt.Sprintf("bfs/nfsstd@%s", t.Rows[r][0]))
	}
}

// BenchmarkFigure9 reproduces Figure 9: PostMark transactions per second
// on the three systems (metrics: BFS's deficit vs NO-REP and vs NFS-STD).
func BenchmarkFigure9(b *testing.B) {
	cfg := workload.DefaultPostMark()
	if testing.Short() {
		cfg.InitialFiles = 200
		cfg.Transactions = 1000
	}
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.Figure9(cfg)
	}
	t.Print(os.Stdout)
	bfsT, nrT, stdT := cell(b, t, 0, 1), cell(b, t, 1, 1), cell(b, t, 2, 1)
	if nrT > 0 {
		b.ReportMetric(100*(1-bfsT/nrT), "bfs-below-norep-%")
	}
	if stdT > 0 {
		b.ReportMetric(100*(1-bfsT/stdT), "bfs-below-nfsstd-%")
	}
}

// BenchmarkAblationWindow sweeps the sliding-window size W — the knob
// DESIGN.md calls out behind the batching optimization.
func BenchmarkAblationWindow(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.AblationWindow(50, benchScale)
	}
	t.Print(os.Stdout)
	b.ReportMetric(cell(b, t, 0, 1), "ops/s@W=1")
	b.ReportMetric(cell(b, t, len(t.Rows)-1, 1), "ops/s@W=32")
}

// BenchmarkAblationCheckpointInterval sweeps the checkpoint period K.
func BenchmarkAblationCheckpointInterval(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.AblationCheckpointInterval(50, benchScale)
	}
	t.Print(os.Stdout)
	b.ReportMetric(cell(b, t, 0, 1), "ops/s@K=16")
	b.ReportMetric(cell(b, t, len(t.Rows)-1, 1), "ops/s@K=256")
}

// BenchmarkAblationInlineThreshold sweeps the separate-request-transmission
// cutoff around the paper's 255-byte choice.
func BenchmarkAblationInlineThreshold(b *testing.B) {
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = bench.AblationInlineThreshold(benchScale)
	}
	t.Print(os.Stdout)
	b.ReportMetric(cell(b, t, 1, 1), "latency_ms@255B")
	b.ReportMetric(cell(b, t, len(t.Rows)-1, 1), "latency_ms@inline")
}
