module bftfast

go 1.22
